//! Integration coverage for the typed `world.stats()` observability API:
//! a 2-PE `exec_am_all` round trip must increment the fabric, lamellae,
//! and AM counters by exactly the amounts the wire protocol implies.
//!
//! Runs with the cost model off (the default), so the counts below are
//! deterministic:
//!
//! * Each PE's `exec_am_all` is one local AM (no serialization) plus one
//!   remote AM. With the aggregation threshold dropped below one frame,
//!   every frame leaves as its own wire chunk at `send` time (the default
//!   100 KiB threshold would let a reply ride the same flushed chunk as a
//!   still-parked request, making chunk counts timing-dependent). So each
//!   PE pushes exactly 2 chunks (2 fabric puts) and drains exactly 2
//!   incoming chunks (2 fabric gets). Fabric counters are fabric-global,
//!   so both PEs observe 4 puts and 4 gets.
//! * The snapshot window contains 2 barriers (the one separating the
//!   `before` snapshot from the phase, and the one before `after`), each
//!   entered by 2 PEs → 4 barrier rounds.

use lamellar_core::am::{AmError, AmOpts, IdempotentAm, RetryPolicy};
use lamellar_repro::prelude::*;
use std::time::Duration;

lamellar_core::am! {
    /// Minimal AM: returns the executing PE's id.
    pub struct WhoAmI {}
    exec(_am, ctx) -> u64 {
        ctx.current_pe() as u64
    }
}

#[test]
fn two_pe_am_round_trip_increments_every_layer() {
    // 16 B is below any framed envelope, so chunks are emitted eagerly;
    // it is also above the test's AM payloads (empty request, u64 reply),
    // so nothing detours through the large-payload heap path.
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(16);
    let deltas = lamellar_core::world::launch_with_config(cfg, |world| {
        world.barrier();
        let before = world.stats();
        // Nobody starts the phase until every PE has its `before` snapshot,
        // so the fabric-global counters are sampled consistently.
        world.barrier();

        let replies = world.block_on(world.exec_am_all(WhoAmI {}));
        assert_eq!(replies, vec![0, 1]);
        world.wait_all();

        // All traffic (requests, replies) has landed once both PEs pass
        // wait_all; the barrier makes that mutual.
        world.barrier();
        world.stats().delta(&before)
    });

    for (pe, d) in deltas.iter().enumerate() {
        // AM layer (per PE): one local, one sent, one received, one reply
        // each way.
        assert_eq!(d.am.local, 1, "PE{pe} local AMs");
        assert_eq!(d.am.sent, 1, "PE{pe} remote AMs sent");
        assert_eq!(d.am.received, 1, "PE{pe} AMs received");
        assert_eq!(d.am.replies_sent, 1, "PE{pe} replies sent");
        assert_eq!(d.am.replies_received, 1, "PE{pe} replies received");

        // Lamellae layer (per PE): the request frame and the reply frame
        // each leave as their own aggregated chunk; the peer's request and
        // reply arrive as two chunks.
        assert_eq!(d.lamellae.msgs_sent, 2, "PE{pe} framed messages sent");
        assert_eq!(d.lamellae.msgs_received, 2, "PE{pe} wire chunks received");
        assert_eq!(d.lamellae.flushes, 2, "PE{pe} chunks handed to the wire");
        assert!(d.lamellae.bytes_sent > 0 && d.lamellae.bytes_received > 0);
        // Two wire buffers per destination and at most two chunks in
        // flight: backpressure can never park a chunk here.
        assert_eq!(d.lamellae.wire_parks, 0, "PE{pe} parked chunks");

        // Fabric layer (fabric-global, identical on both PEs): one put per
        // outgoing chunk and one get per incoming chunk, world-wide.
        assert_eq!(d.fabric.puts, 4, "PE{pe} fabric puts");
        assert_eq!(d.fabric.gets, 4, "PE{pe} fabric gets");
        assert_eq!(
            d.fabric.inject_puts + d.fabric.rendezvous_puts,
            d.fabric.puts,
            "PE{pe} inject/rendezvous split covers all puts"
        );
        // Both PEs enter 2 barriers inside the window, but the *other* PE's
        // first entry can race this PE's `before` snapshot, and a faster
        // peer may already have entered the world-teardown barrier — the
        // global count lands between 3 and 5.
        assert!(
            (3..=5).contains(&d.fabric.barrier_rounds),
            "PE{pe} barrier rounds in window: {}",
            d.fabric.barrier_rounds
        );
        assert_eq!(d.fabric.put_sizes.count(), 4, "PE{pe} put-size histogram");

        // Executor layer (per PE): only the local AM spawns a pool task.
        // The incoming remote AM is synchronous, so the progress thread
        // completes it inline (one poll) and never touches the executor.
        assert_eq!(d.executor.spawned, 1, "PE{pe} tasks spawned");
        assert_eq!(d.am.inline_execs, 1, "PE{pe} remote AM executed inline");
        assert_eq!(d.am.spilled_execs, 0, "PE{pe} nothing spilled to the pool");
        assert!(d.executor.completed >= 1, "PE{pe} tasks completed");
    }

    // The Display form is the README's table; spot-check its shape.
    let rendered = format!("{}", deltas[0]);
    for needle in ["fabric", "lamellae", "executor", "am", "puts", "msgs_sent", "spawned"] {
        assert!(rendered.contains(needle), "stats table missing {needle:?}:\n{rendered}");
    }
}

lamellar_core::am! {
    /// Histogram-style update: bump a slot index (fire-and-forget shape).
    pub struct Bump { pub slot: u64 }
    exec(am, _ctx) -> () {
        let _ = am.slot;
    }
}

#[test]
fn buffer_pool_hit_rate_is_high_under_histo_traffic() {
    // Histogram-benchmark traffic shape: batches of small AMs fanned out
    // to the peer, `wait_all` pacing each batch (as the histo kernel
    // does). The pool grows to the first batch's backlog, then recycles:
    // steady-state hit rate ≥ 95% is the zero-copy path's acceptance bar.
    // A 1 KiB threshold makes chunks actually cycle (the default 100 KiB
    // would fit the whole run in a handful of chunks, leaving warm-up
    // misses dominant).
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(1024);
    let stats = lamellar_core::world::launch_with_config(cfg, |world| {
        let mut slot = 0u64;
        for _round in 0..50 {
            for _ in 0..200 {
                let dst = (world.my_pe() + 1) % world.num_pes();
                world.exec_unit_am_pe(dst, Bump { slot });
                slot += 1;
            }
            world.wait_all();
        }
        world.barrier();
        world.stats()
    });
    for (pe, s) in stats.iter().enumerate() {
        let rate = s.lamellae.pool_hit_rate().expect("pool was exercised");
        assert!(
            rate >= 0.95,
            "PE{pe} buffer-pool hit rate {:.3} below 0.95 ({} hits / {} misses, hwm {})",
            rate,
            s.lamellae.pool_hits,
            s.lamellae.pool_misses,
            s.lamellae.pool_hwm
        );
    }
}

/// A pure fire-and-forget workload must elide *every* reply: each launch
/// travels as a `RequestUnit` envelope, completion comes back as bulk
/// `AckCount` credits, and no per-request pending slot is ever allocated.
/// All counters below are exact except `acks_received` (the serving PE
/// coalesces credits per flush, so only a lower bound is deterministic).
#[test]
fn unit_am_workload_elides_every_reply() {
    const N: u64 = 100;
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(256);
    let deltas = lamellar_core::world::launch_with_config(cfg, |world| {
        world.barrier();
        let before = world.stats();
        world.barrier();

        let dst = (world.my_pe() + 1) % world.num_pes();
        for slot in 0..N {
            world.exec_unit_am_pe(dst, Bump { slot });
        }
        world.wait_all();
        // Reply elision means no tracked request slots, even transiently:
        // the pending table never saw these AMs at all.
        assert_eq!(world.pending_handles(), 0, "unit AMs must not allocate pending slots");

        world.barrier();
        world.stats().delta(&before)
    });
    for (pe, d) in deltas.iter().enumerate() {
        assert_eq!(d.am.sent, N, "PE{pe} remote AMs sent");
        assert_eq!(d.am.unit_sent, N, "PE{pe} unit (reply-elided) sends");
        assert_eq!(d.am.received, N, "PE{pe} AMs received");
        assert_eq!(d.am.replies_sent, 0, "PE{pe} must elide every reply");
        assert_eq!(d.am.replies_received, 0, "PE{pe} must receive no replies");
        assert!(d.am.acks_received >= 1, "PE{pe} saw at least one ack credit");
        assert_eq!(
            d.am.inline_execs + d.am.spilled_execs,
            N,
            "PE{pe} every received unit AM executed inline or spilled"
        );
    }
}

lamellar_core::am! {
    /// Panics on the destination (resilience-counter fixture).
    pub struct ObsPanicAm {}
    exec(_am, _ctx) -> u64 {
        panic!("observability panic fixture");
    }
}

lamellar_core::am! {
    /// Sleeps before replying (deadline/cancel fixture); idempotent — the
    /// reply is a pure function of the input.
    pub struct ObsSlowAm { pub sleep_ms: u64 }
    exec(am, _ctx) -> u64 {
        std::thread::sleep(std::time::Duration::from_millis(am.sleep_ms));
        am.sleep_ms
    }
}

impl IdempotentAm for ObsSlowAm {}

/// The resilience counters (panics caught, timeouts, retries, cancels) are
/// exact per-event deltas, assertable through the same snapshot/delta
/// pattern as the wire counters. Only the new counters are asserted —
/// re-issues legitimately perturb `sent`/`received` counts.
#[test]
fn resilience_counters_increment_exactly_per_event() {
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(256);
    let deltas = lamellar_core::world::launch_with_config(cfg, |world| {
        world.barrier();
        let before = world.stats();
        world.barrier();
        if world.my_pe() == 0 {
            // 1 panic, caught on the serving PE (PE1).
            match world.block_on(world.exec_am_pe(1, ObsPanicAm {}).fallible()) {
                Err(AmError::RemotePanic { pe: 1, .. }) => {}
                other => panic!("expected RemotePanic, got {other:?}"),
            }
            // 1 cancel.
            assert!(world.exec_am_pe(1, ObsSlowAm { sleep_ms: 150 }).cancel());
            // 1 timeout: non-idempotent path, 10 ms deadline vs a 150 ms
            // handler — no retry is attempted.
            let h = world.exec_am_pe_with(
                1,
                ObsSlowAm { sleep_ms: 150 },
                AmOpts::deadline(Duration::from_millis(10)),
            );
            match world.block_on(h.fallible()) {
                Err(AmError::Timeout { pe: 1, attempts: 1 }) => {}
                other => panic!("expected Timeout, got {other:?}"),
            }
            // 1 retry, then success: the first 10 ms window misses the
            // 40 ms handler, the 500 ms re-issue window comfortably covers
            // it.
            let h = world.exec_idempotent_am_pe(
                1,
                ObsSlowAm { sleep_ms: 40 },
                AmOpts::deadline(Duration::from_millis(10)).retry(RetryPolicy::exponential(
                    3,
                    Duration::from_millis(500),
                    2,
                    Duration::from_secs(1),
                )),
            );
            assert_eq!(world.block_on(h.fallible()), Ok(40));
            world.wait_all();
        }
        world.wait_all();
        world.barrier();
        // Let the abandoned handlers' late replies drain before snapshotting.
        std::thread::sleep(Duration::from_millis(400));
        world.barrier();
        world.stats().delta(&before)
    });
    let d0 = &deltas[0];
    assert_eq!(d0.am.cancelled, 1, "PE0 cancels");
    assert_eq!(d0.am.timeouts, 1, "PE0 timeouts");
    assert_eq!(d0.am.retries, 1, "PE0 re-issues");
    assert_eq!(d0.am.stalls, 0, "no watchdog configured");
    assert_eq!(deltas[1].am.panics_caught, 1, "PE1 panics caught");
    assert_eq!(deltas[1].am.stalls, 0, "no watchdog configured");
}

#[test]
fn disabled_metrics_read_zero_everywhere() {
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).metrics(false);
    let stats = lamellar_core::world::launch_with_config(cfg, |world| {
        let replies = world.block_on(world.exec_am_all(WhoAmI {}));
        assert_eq!(replies, vec![0, 1]);
        world.barrier();
        world.stats()
    });
    for (pe, s) in stats.iter().enumerate() {
        assert_eq!(s.fabric.puts + s.fabric.gets, 0, "PE{pe} fabric");
        assert_eq!(s.lamellae.msgs_sent + s.lamellae.msgs_received, 0, "PE{pe} lamellae");
        assert_eq!(s.executor.spawned, 0, "PE{pe} executor");
        assert_eq!(s.am.sent + s.am.local + s.am.received, 0, "PE{pe} am");
    }
}
