//! Chaos suite for the fault-injection plane + reliable delivery layer
//! (DESIGN.md §4b).
//!
//! Every test runs a real multi-PE world with an armed [`FaultConfig`] and
//! asserts the end-to-end contract: **every AM future resolves** — to `Ok`
//! when the reliable layer can recover (drops, duplicates, delays,
//! corruption at survivable rates), to a typed `Err` when a pair is
//! genuinely severed. Nothing hangs, nothing panics, and payloads arrive
//! bit-exact or not at all.

use lamellar_core::am::{AmError, AmOpts, IdempotentAm, RetryPolicy};
use lamellar_repro::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

lamellar_core::am! {
    /// Echo AM: hands the payload back to the caller, so any corruption the
    /// checksum failed to catch would surface as a mismatched reply.
    pub struct EchoAm { pub tag: u64, pub payload: Vec<u8> }
    exec(am, _ctx) -> (u64, Vec<u8>) {
        (am.tag, am.payload)
    }
}

/// Deterministic per-message payload (varied lengths, non-trivial bytes).
fn payload_for(pe: usize, i: usize) -> Vec<u8> {
    let len = 1 + (i * 7 + pe * 13) % 96;
    (0..len).map(|j| (j as u8) ^ (i as u8).wrapping_mul(31) ^ (pe as u8)).collect()
}

/// Run `msgs` echo AMs from every PE to every other PE under `fault`,
/// asserting each reply is bit-exact, and return the per-PE stats deltas.
fn run_chaos(num_pes: usize, msgs: usize, fault: FaultConfig) -> Vec<RuntimeStats> {
    let cfg = WorldConfig::new(num_pes)
        .backend(Backend::Rofi)
        // Small threshold: chunks cycle constantly, maximizing the
        // injector's exposure to real traffic.
        .agg_threshold(256)
        .faults(fault);
    lamellar_core::world::launch_with_config(cfg, move |world| {
        world.barrier();
        let before = world.stats();
        world.barrier();
        let me = world.my_pe();
        let handles: Vec<_> = (0..msgs)
            .flat_map(|i| (0..world.num_pes()).filter(|&dst| dst != me).map(move |dst| (i, dst)))
            .map(|(i, dst)| {
                let p = payload_for(me, i);
                (i, p.clone(), world.exec_am_pe(dst, EchoAm { tag: i as u64, payload: p }))
            })
            .collect();
        for (i, sent, h) in handles {
            // `fallible()` is the resolution guarantee under test: the
            // future completes even under faults, and at these rates the
            // reliable layer must always recover to Ok.
            let (tag, echoed) = world
                .block_on(h.fallible())
                .unwrap_or_else(|e| panic!("PE{me} msg {i} failed: {e}"));
            assert_eq!(tag, i as u64, "PE{me} reply tag");
            assert_eq!(echoed, sent, "PE{me} msg {i} payload integrity");
        }
        world.wait_all();
        world.barrier();
        world.stats().delta(&before)
    })
}

#[test]
fn chaos_drop_only_all_futures_resolve() {
    let stats = run_chaos(2, 60, FaultConfig::seeded(0xd20f).drop_prob(0.10));
    let drops: u64 = stats[0].fault.drops_injected;
    let retransmits: u64 = stats.iter().map(|s| s.lamellae.retransmits).sum();
    assert!(drops > 0, "a 10% drop rate over 240+ chunks must fire");
    assert!(retransmits > 0, "dropped chunks must be retransmitted");
    assert_eq!(stats[0].lamellae.delivery_failures, 0, "no pair death at 10% drops");
}

#[test]
fn chaos_delay_only_all_futures_resolve() {
    let stats = run_chaos(2, 60, FaultConfig::seeded(0xde1a).delay_prob(0.15, 300_000));
    assert!(stats[0].fault.delays_injected > 0, "15% delay rate must fire");
    // Delays reorder nothing (FIFO holds the line) and lose nothing.
    assert_eq!(stats[0].lamellae.delivery_failures, 0);
}

#[test]
fn chaos_corrupt_only_all_futures_resolve() {
    let stats =
        run_chaos(2, 60, FaultConfig::seeded(0xc0de).corrupt_prob(0.08).truncate_prob(0.04));
    let corrupt_drops: u64 = stats.iter().map(|s| s.lamellae.corrupt_chunks_dropped).sum();
    assert!(
        stats[0].fault.corruptions_injected + stats[0].fault.truncations_injected > 0,
        "corruption faults must fire"
    );
    assert!(corrupt_drops > 0, "every bit flip/truncation must trip the receive checksum");
}

#[test]
fn chaos_combined_matrix_all_futures_resolve() {
    // The acceptance-criteria mix (5% drop + 1% corruption) plus dup and
    // delay, over 3 PEs: all-to-all traffic, every future Ok.
    let fault = FaultConfig::seeded(0x5eed_c4a0)
        .drop_prob(0.05)
        .corrupt_prob(0.01)
        .dup_prob(0.05)
        .delay_prob(0.05, 200_000);
    let stats = run_chaos(3, 40, fault);
    let f = &stats[0].fault;
    assert!(f.total() > 0, "combined schedule must inject something: {f:?}");
    assert_eq!(
        stats.iter().map(|s| s.lamellae.delivery_failures).sum::<u64>(),
        0,
        "no pair dies at these rates"
    );
}

#[test]
fn severed_pair_resolves_to_typed_error_not_a_hang() {
    // Drop probability 1.0 on the 0→1 direction only: PE0's requests can
    // never arrive, retries exhaust, and every future toward PE1 must
    // resolve to `Err(Comm(PeerUnreachable))`. PE1 stays quiet — its
    // reply direction would be severed too (the request never arrives, so
    // no reply is owed).
    let mut sever = FaultRates::none();
    sever.drop = 1.0;
    let fault = FaultConfig::seeded(0xdead).pair(0, 1, sever);
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(256).faults(fault);
    let outcomes = lamellar_core::world::launch_with_config(cfg, move |world| {
        if world.my_pe() != 0 {
            // PE1 never hears from PE0; just meet at the (control-plane,
            // never-faulted) barrier below.
            world.barrier();
            return (0, world.stats());
        }
        let handles: Vec<_> = (0..4)
            .map(|i| world.exec_am_pe(1, EchoAm { tag: i, payload: vec![1, 2, 3] }).fallible())
            .collect();
        let mut unreachable = 0;
        for h in handles {
            match world.block_on(h) {
                Err(AmError::Comm(CommError::PeerUnreachable { pe: 1 })) => unreachable += 1,
                other => panic!("expected PeerUnreachable, got {other:?}"),
            }
        }
        // Later sends fail fast: the pair is dead for the world's lifetime.
        match world.block_on(world.exec_am_pe(1, EchoAm { tag: 99, payload: vec![] }).fallible()) {
            Err(AmError::Comm(CommError::PeerUnreachable { pe: 1 })) => unreachable += 1,
            other => panic!("expected fast-fail on dead pair, got {other:?}"),
        }
        world.wait_all(); // must terminate: failed futures are accounted for
        world.barrier();
        (unreachable, world.stats())
    });
    assert_eq!(outcomes[0].0, 5, "all five futures resolved to PeerUnreachable");
    assert_eq!(outcomes[0].1.lamellae.delivery_failures, 1, "one pair declared dead");
    assert!(outcomes[0].1.fault.drops_injected > 0);
}

/// Unit-AM effect table shared by all simulated PEs (they share the
/// process): key → execution count. Lets the fire-and-forget test prove
/// both completeness (every key present) and exactly-once delivery (every
/// count is 1) without any reply channel to observe.
fn unit_effects() -> &'static Mutex<HashMap<u64, u64>> {
    static EFFECTS: OnceLock<Mutex<HashMap<u64, u64>>> = OnceLock::new();
    EFFECTS.get_or_init(|| Mutex::new(HashMap::new()))
}

lamellar_core::am! {
    /// Fire-and-forget insert: the only evidence it ran is the side effect.
    pub struct UnitPutAm { pub key: u64 }
    exec(am, _ctx) -> () {
        *unit_effects().lock().unwrap().entry(am.key).or_insert(0) += 1;
    }
}

/// The reply-elided path under drop faults: requests travel as
/// `RequestUnit` envelopes with no per-op reply, completion is conveyed by
/// cumulative `AckCount` credits, and both ride the same reliable
/// (go-back-N) transport. Drops must therefore stall neither the updates
/// nor `wait_all` — and duplicate suppression keeps effects exactly-once.
#[test]
fn chaos_drops_unit_am_workload_completes_exactly_once() {
    const MSGS: u64 = 80;
    let fault = FaultConfig::seeded(0x0f1e_d00d).drop_prob(0.10);
    let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(256).faults(fault);
    let stats = lamellar_core::world::launch_with_config(cfg, move |world| {
        world.barrier();
        let before = world.stats();
        world.barrier();
        let me = world.my_pe() as u64;
        let dst = (world.my_pe() + 1) % world.num_pes();
        for i in 0..MSGS {
            world.exec_unit_am_pe(dst, UnitPutAm { key: (me << 32) | i });
        }
        world.wait_all(); // must terminate: ack credits are retransmitted too
        world.barrier();
        world.stats().delta(&before)
    });
    let table = unit_effects().lock().unwrap();
    for me in 0..2u64 {
        for i in 0..MSGS {
            let key = (me << 32) | i;
            assert_eq!(
                table.get(&key),
                Some(&1),
                "unit AM (pe {me}, msg {i}) must execute exactly once"
            );
        }
    }
    assert!(stats[0].fault.drops_injected > 0, "10% drops over this traffic must fire");
    assert!(
        stats.iter().map(|s| s.lamellae.retransmits).sum::<u64>() > 0,
        "dropped chunks must be replayed by go-back-N"
    );
    for (pe, d) in stats.iter().enumerate() {
        assert_eq!(d.am.unit_sent, MSGS, "PE{pe} unit sends");
        assert_eq!(d.am.replies_sent, 0, "PE{pe} replies stay elided under faults");
        assert_eq!(d.lamellae.delivery_failures, 0, "PE{pe}: no pair death at 10% drops");
    }
}

/// Idempotent effect table shared by all simulated PEs (they share the
/// process): key → value. Re-executing a `PutAm` re-inserts the same pair,
/// so the final table is identical to an exactly-once execution.
fn effects() -> &'static Mutex<HashMap<u64, u64>> {
    static EFFECTS: OnceLock<Mutex<HashMap<u64, u64>>> = OnceLock::new();
    EFFECTS.get_or_init(|| Mutex::new(HashMap::new()))
}

lamellar_core::am! {
    /// Idempotent insert: applying it twice leaves the same state as once.
    pub struct PutAm { pub key: u64, pub val: u64 }
    exec(am, _ctx) -> u64 {
        effects().lock().unwrap().insert(am.key, am.val);
        am.val
    }
}

impl IdempotentAm for PutAm {}

#[test]
fn chaos_delay_plus_retry_is_exactly_once_for_idempotent_ams() {
    // Half of all chunks are delayed 8 ms — far past the 3 ms AM deadline,
    // so deadline misses (and re-issues) are essentially guaranteed — while
    // the transport's retransmit timer sits at 20 ms, above the delay, so
    // recovery is driven by the AM-level retry under test rather than
    // go-back-N. Windows widen 3 → 6 → 12 → 24 → 48 ms: by the later
    // attempts a window comfortably covers the worst-case delayed round
    // trip, so every request converges to Ok.
    let fault = FaultConfig::seeded(0x1de0_b0ff).delay_prob(0.5, 8_000_000);
    let cfg = WorldConfig::new(2)
        .backend(Backend::Rofi)
        .agg_threshold(256)
        .faults(fault)
        .retransmit_timeout(Duration::from_millis(20));
    let opts = AmOpts::deadline(Duration::from_millis(3)).retry(RetryPolicy::exponential(
        5,
        Duration::from_millis(3),
        2,
        Duration::from_millis(48),
    ));
    let stats = lamellar_core::world::launch_with_config(cfg, move |world| {
        world.barrier();
        let before = world.stats();
        world.barrier();
        if world.my_pe() == 0 {
            // Sequential: one AM in flight at a time, every reply checked.
            for i in 0..30u64 {
                let key = 0xe0_0000 + i;
                let h = world.exec_idempotent_am_pe(1, PutAm { key, val: i * 3 }, opts);
                let val = world
                    .block_on(h.fallible())
                    .unwrap_or_else(|e| panic!("idempotent AM {i} must converge, got {e}"));
                assert_eq!(val, i * 3, "reply integrity for key {key:#x}");
            }
        }
        world.wait_all();
        world.barrier();
        world.stats().delta(&before)
    });
    // Exactly-once *effects*: despite re-issues, the table reads as if each
    // AM ran once.
    let table = effects().lock().unwrap();
    for i in 0..30u64 {
        assert_eq!(table.get(&(0xe0_0000 + i)), Some(&(i * 3)), "effect for AM {i}");
    }
    assert!(stats[0].fault.delays_injected > 0, "the delay schedule must fire");
    assert!(
        stats[0].am.retries >= 1,
        "8 ms delays against a 3 ms deadline must force at least one re-issue"
    );
    assert_eq!(stats[0].am.timeouts, 0, "widening windows must converge before retries exhaust");
}

#[test]
fn same_seed_reproduces_same_fault_counters() {
    // Strictly sequential traffic (one AM in flight at a time) makes the
    // injected-fault counters a pure function of the seed: verdicts are
    // keyed by (seed, src, dst, seq, attempt), and sequential block_on
    // keeps the (seq, attempt) history identical across runs.
    //
    // Retransmit *counts* are deliberately NOT compared: retransmits fire
    // on a wall-clock timeout, so an OS scheduling stall can add a
    // (harmless, duplicate-suppressed) spurious retransmit. The injected
    // counters, however, must match exactly even so: the plane answers
    // attempts after a chunk's first delivering verdict with an uncounted
    // `Deliver`, which decouples the fault schedule from retransmit-timer
    // scheduling (DESIGN.md §4b). This deliberately runs at the default
    // 1 ms retransmit timeout — on a loaded machine spurious timer fires
    // DO happen here, and the counters must still reproduce.
    fn seeded_run(seed: u64) -> ((u64, u64), u64) {
        let fault = FaultConfig::seeded(seed).drop_prob(0.05).corrupt_prob(0.01);
        let cfg = WorldConfig::new(2).backend(Backend::Rofi).agg_threshold(16).faults(fault);
        let stats = lamellar_core::world::launch_with_config(cfg, move |world| {
            if world.my_pe() == 0 {
                for i in 0..60u64 {
                    let (tag, echoed) = world.block_on(
                        world.exec_am_pe(1, EchoAm { tag: i, payload: vec![i as u8; 24] }),
                    );
                    assert_eq!((tag, echoed), (i, vec![i as u8; 24]));
                }
            }
            world.barrier();
            let s = world.stats();
            world.barrier();
            s
        });
        let f = &stats[0].fault;
        let retransmits = stats.iter().map(|s| s.lamellae.retransmits).sum::<u64>();
        ((f.drops_injected, f.corruptions_injected), retransmits)
    }
    let (a, a_rtx) = seeded_run(0x5eed);
    let (b, _) = seeded_run(0x5eed);
    let (c, _) = seeded_run(0xfeed);
    assert_eq!(a, b, "same seed, same injected-fault counters");
    assert!(a.0 > 0, "5% drops over 120 chunks fire with this seed");
    assert!(a_rtx > 0, "nonzero retransmits under drops");
    assert_ne!(a, c, "different seed diverges (probabilistically certain here)");
}

proptest! {
    // Each case launches a full 2-PE world; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fault schedules preserve payload integrity: whatever the
    /// injector does at survivable rates, every echoed payload comes back
    /// bit-exact (the receive checksum rejects anything damaged, and
    /// go-back-N replays the original bytes).
    #[test]
    fn random_fault_schedules_preserve_payload_integrity(
        seed in any::<u64>(),
        // The shim's Strategy impls cover integer ranges only, so fault
        // probabilities are drawn in basis points (1 bp = 0.01%).
        drop_bp in 0u32..2_500,
        dup_bp in 0u32..2_500,
        corrupt_bp in 0u32..1_500,
        truncate_bp in 0u32..1_000,
    ) {
        let fault = FaultConfig::seeded(seed)
            .drop_prob(drop_bp as f64 / 10_000.0)
            .dup_prob(dup_bp as f64 / 10_000.0)
            .corrupt_prob(corrupt_bp as f64 / 10_000.0)
            .truncate_prob(truncate_bp as f64 / 10_000.0);
        run_chaos(2, 15, fault);
    }
}
