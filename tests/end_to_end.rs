//! Workspace-level integration tests: cross-crate flows a downstream user
//! would exercise (runtime + arrays + kernels together).

use lamellar_array::prelude::*;
use lamellar_core::active_messaging::prelude::*;
use lamellar_core::config::{Backend, WorldConfig};
use lamellar_core::prelude::Darc;
use std::sync::atomic::{AtomicUsize, Ordering};

lamellar_core::am! {
    /// Counts arrivals on a shared Darc counter and reports the PE.
    pub struct VisitAm { pub counter: Darc<AtomicUsize> }
    exec(am, ctx) -> usize {
        am.counter.fetch_add(1, Ordering::Relaxed);
        ctx.current_pe()
    }
}

#[test]
fn ams_darcs_and_arrays_compose() {
    launch(3, |world| {
        let team = world.team();
        let counter = Darc::new(&team, AtomicUsize::new(0));
        world.barrier();
        // AM fan-out with a Darc payload…
        let pes = world.block_on(world.exec_am_all(VisitAm { counter: counter.clone() }));
        assert_eq!(pes, vec![0, 1, 2]);
        world.wait_all();
        world.barrier();
        assert_eq!(counter.load(Ordering::Relaxed), 3);
        // …then array ops over the same world.
        let arr = AtomicArray::<u64>::new(&world, 9, Distribution::Cyclic);
        world.barrier();
        world.block_on(arr.batch_add((0..9).collect(), 1));
        world.wait_all();
        world.barrier();
        assert_eq!(world.block_on(arr.sum()), 9 * world.num_pes() as u64);
        world.barrier();
    });
}

#[test]
fn histogram_kernel_small_end_to_end() {
    let cfg = bale_suite::common::TableConfig::test_small();
    let results =
        launch(2, move |world| bale_suite::histo::histo_lamellar_atomic_array(&world, &cfg));
    assert!(results.iter().all(|r| r.global_ops == cfg.updates_per_pe * 2));
}

#[test]
fn randperm_all_variants_agree_on_small_input() {
    let cfg =
        bale_suite::common::PermConfig { perm_per_pe: 64, target_per_pe: 128, batch: 16, seed: 99 };
    // Each variant verifies internally that it produced a permutation.
    launch(2, move |world| {
        bale_suite::randperm::randperm_array_darts(&world, &cfg);
        bale_suite::randperm::randperm_am_darts(&world, &cfg);
        bale_suite::randperm::randperm_am_darts_opt(&world, &cfg);
        bale_suite::randperm::randperm_am_push(&world, &cfg);
    });
}

#[test]
fn shmem_and_lamellar_histograms_conserve_identically() {
    // Same seed, same stream: both substrates must count the same totals.
    let cfg = bale_suite::common::TableConfig::test_small();
    let lamellar = launch(2, move |world| bale_suite::histo::histo_lamellar_am(&world, &cfg));
    let shmem = oshmem_sim::shmem_launch(2, 16, move |ctx| {
        bale_suite::histo::baselines::histo_exstack(&ctx, &cfg)
    });
    assert_eq!(lamellar[0].global_ops, shmem[0].global_ops);
}

#[test]
fn backends_are_interchangeable_for_user_code() {
    // Paper Sec. III-A: "switching between the ROFI Lamellae and the
    // Shared Memory Lamellae should be transparent."
    for backend in [Backend::Rofi, Backend::Shmem] {
        let cfg = WorldConfig::new(2).backend(backend);
        let sums = launch_with_config(cfg, |world| {
            let arr = AtomicArray::<u64>::new(&world, 10, Distribution::Block);
            world.barrier();
            world.block_on(arr.batch_add((0..10).collect(), 2));
            world.wait_all();
            world.barrier();
            let s = world.block_on(arr.sum());
            world.barrier();
            s
        });
        assert_eq!(sums, vec![40, 40], "backend {backend:?}");
    }
}

#[test]
fn failure_injection_progress_delay_does_not_break_delivery() {
    // Slow the progress engine to shake out termination-detection races.
    let results = launch(2, |world| {
        // Arm the fabric's progress-delay injector (applies to every
        // progress tick on every PE — the fabric hook is global).
        world.rt().lamellae().inject_progress_delay(50_000);
        let cfg = bale_suite::common::TableConfig {
            table_per_pe: 20,
            updates_per_pe: 500,
            batch: 32,
            seed: 3,
        };
        let r = bale_suite::histo::histo_lamellar_am(&world, &cfg);
        world.rt().lamellae().inject_progress_delay(0);
        r
    });
    assert_eq!(results.len(), 2);
}
