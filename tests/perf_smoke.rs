//! Deterministic perf-smoke gate for the fire-and-forget fast path.
//!
//! This is CI's guard against silently losing the reply-elision win: a tiny
//! 4-PE histogram runs entirely on unit AMs, and the gate asserts the two
//! properties the speedup rests on using *counts*, not timings (timings are
//! hopeless on a shared single-core CI box):
//!
//! * **Zero reply envelopes.** Every update is a unit AM, so the serving
//!   side must emit no `Reply`/`ReplyErr` at all — completion is carried by
//!   coalesced `AckCount` credits.
//! * **Aggregation factor.** Many envelopes must ride each wire chunk. The
//!   envelope count is exact (192 unit requests per PE plus a handful of
//!   acks); the chunk count can wobble slightly when an idle progress tick
//!   seals a partial buffer, so the gate asserts a conservative floor well
//!   below the ideal (~16 envelopes/chunk here) but far above the
//!   one-envelope-per-chunk regime it exists to catch.
//!
//! Invoked explicitly (release) from `scripts/ci.sh`; also runs with the
//! normal workspace suite.

use lamellar_core::darc::Darc;
use lamellar_repro::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

const SLOTS: usize = 64;
const ROUNDS: usize = 64;
const IDXS_PER_AM: usize = 4;

lamellar_core::am! {
    /// Tiny histogram kernel: bump a handful of destination-local slots.
    pub struct SmokeHistoAm {
        pub table: Darc<Vec<AtomicUsize>>,
        pub idxs: Vec<u32>,
    }
    exec(am, _ctx) -> () {
        for &i in &am.idxs {
            am.table[i as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[test]
fn perf_smoke_unit_am_histogram_gate() {
    // 4 KiB threshold: each peer stream accumulates ~64 small envelopes
    // (~3 KiB) before wait_all flushes it, so aggregation is structural,
    // not timing luck.
    let cfg = WorldConfig::new(4).backend(Backend::Rofi).agg_threshold(4096);
    let deltas = lamellar_core::world::launch_with_config(cfg, |world| {
        let me = world.my_pe();
        let npes = world.num_pes();
        let table = Darc::new(&world.team(), {
            let mut v = Vec::with_capacity(SLOTS);
            v.resize_with(SLOTS, || AtomicUsize::new(0));
            v
        });
        world.barrier();
        let before = world.stats();
        // Consistent snapshot: nobody starts until everyone has `before`.
        world.barrier();

        for round in 0..ROUNDS {
            for dst in (0..npes).filter(|&p| p != me) {
                let idxs: Vec<u32> =
                    (0..IDXS_PER_AM).map(|k| ((round * IDXS_PER_AM + k) % SLOTS) as u32).collect();
                world.exec_unit_am_pe(dst, SmokeHistoAm { table: table.clone(), idxs });
            }
        }
        world.wait_all();
        assert_eq!(world.pending_handles(), 0, "unit AMs must not occupy the pending table");
        world.barrier();
        let d = world.stats().delta(&before);

        // Correctness backstop: every peer's 64 AMs × 4 increments landed
        // in this PE's shard (the Darc resolves to the local instance).
        let local: usize = table.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(local, (npes - 1) * ROUNDS * IDXS_PER_AM, "lost histogram updates");
        d
    });

    let sent_per_pe = (ROUNDS * 3) as u64;
    for (pe, d) in deltas.iter().enumerate() {
        // The whole workload is fire-and-forget: not one reply envelope.
        assert_eq!(d.am.replies_sent, 0, "PE{pe} sent reply envelopes for unit AMs");
        assert_eq!(d.am.replies_received, 0, "PE{pe} received reply envelopes");
        assert_eq!(d.am.unit_sent, sent_per_pe, "PE{pe} unit AMs sent");
        assert_eq!(d.am.sent, sent_per_pe, "PE{pe} remote AMs sent");
        assert_eq!(d.am.received, sent_per_pe, "PE{pe} AMs served");
        assert!(d.am.acks_received >= 1, "PE{pe} saw no counted-ack credit");

        // Aggregation gate: envelopes per flushed chunk. msgs_sent counts
        // the 192 requests plus coalesced acks; flushes is the chunk count.
        assert!(d.lamellae.flushes > 0, "PE{pe} recorded no flushes");
        let factor = d.lamellae.msgs_sent as f64 / d.lamellae.flushes as f64;
        assert!(
            factor >= 4.0,
            "PE{pe} aggregation factor collapsed: {:.2} envelopes/chunk \
             ({} msgs / {} flushes)",
            factor,
            d.lamellae.msgs_sent,
            d.lamellae.flushes
        );
    }
}
